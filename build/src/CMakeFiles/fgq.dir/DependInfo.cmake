
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fgq/count/acq_count.cc" "src/CMakeFiles/fgq.dir/fgq/count/acq_count.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/count/acq_count.cc.o.d"
  "/root/repo/src/fgq/count/matchings.cc" "src/CMakeFiles/fgq.dir/fgq/count/matchings.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/count/matchings.cc.o.d"
  "/root/repo/src/fgq/db/database.cc" "src/CMakeFiles/fgq.dir/fgq/db/database.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/db/database.cc.o.d"
  "/root/repo/src/fgq/db/index.cc" "src/CMakeFiles/fgq.dir/fgq/db/index.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/db/index.cc.o.d"
  "/root/repo/src/fgq/db/loader.cc" "src/CMakeFiles/fgq.dir/fgq/db/loader.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/db/loader.cc.o.d"
  "/root/repo/src/fgq/db/relation.cc" "src/CMakeFiles/fgq.dir/fgq/db/relation.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/db/relation.cc.o.d"
  "/root/repo/src/fgq/db/trie.cc" "src/CMakeFiles/fgq.dir/fgq/db/trie.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/db/trie.cc.o.d"
  "/root/repo/src/fgq/eval/bmm.cc" "src/CMakeFiles/fgq.dir/fgq/eval/bmm.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/eval/bmm.cc.o.d"
  "/root/repo/src/fgq/eval/clique_gadget.cc" "src/CMakeFiles/fgq.dir/fgq/eval/clique_gadget.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/eval/clique_gadget.cc.o.d"
  "/root/repo/src/fgq/eval/diseq.cc" "src/CMakeFiles/fgq.dir/fgq/eval/diseq.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/eval/diseq.cc.o.d"
  "/root/repo/src/fgq/eval/enumerate.cc" "src/CMakeFiles/fgq.dir/fgq/eval/enumerate.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/eval/enumerate.cc.o.d"
  "/root/repo/src/fgq/eval/ncq.cc" "src/CMakeFiles/fgq.dir/fgq/eval/ncq.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/eval/ncq.cc.o.d"
  "/root/repo/src/fgq/eval/oracle.cc" "src/CMakeFiles/fgq.dir/fgq/eval/oracle.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/eval/oracle.cc.o.d"
  "/root/repo/src/fgq/eval/prepared.cc" "src/CMakeFiles/fgq.dir/fgq/eval/prepared.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/eval/prepared.cc.o.d"
  "/root/repo/src/fgq/eval/random_access.cc" "src/CMakeFiles/fgq.dir/fgq/eval/random_access.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/eval/random_access.cc.o.d"
  "/root/repo/src/fgq/eval/ucq_enum.cc" "src/CMakeFiles/fgq.dir/fgq/eval/ucq_enum.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/eval/ucq_enum.cc.o.d"
  "/root/repo/src/fgq/eval/yannakakis.cc" "src/CMakeFiles/fgq.dir/fgq/eval/yannakakis.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/eval/yannakakis.cc.o.d"
  "/root/repo/src/fgq/fo/bounded_degree.cc" "src/CMakeFiles/fgq.dir/fgq/fo/bounded_degree.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/fo/bounded_degree.cc.o.d"
  "/root/repo/src/fgq/fo/naive_fo.cc" "src/CMakeFiles/fgq.dir/fgq/fo/naive_fo.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/fo/naive_fo.cc.o.d"
  "/root/repo/src/fgq/hypergraph/hypergraph.cc" "src/CMakeFiles/fgq.dir/fgq/hypergraph/hypergraph.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/hypergraph/hypergraph.cc.o.d"
  "/root/repo/src/fgq/hypergraph/star_size.cc" "src/CMakeFiles/fgq.dir/fgq/hypergraph/star_size.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/hypergraph/star_size.cc.o.d"
  "/root/repo/src/fgq/mso/courcelle.cc" "src/CMakeFiles/fgq.dir/fgq/mso/courcelle.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/mso/courcelle.cc.o.d"
  "/root/repo/src/fgq/mso/tree_decomposition.cc" "src/CMakeFiles/fgq.dir/fgq/mso/tree_decomposition.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/mso/tree_decomposition.cc.o.d"
  "/root/repo/src/fgq/query/cq.cc" "src/CMakeFiles/fgq.dir/fgq/query/cq.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/query/cq.cc.o.d"
  "/root/repo/src/fgq/query/fo.cc" "src/CMakeFiles/fgq.dir/fgq/query/fo.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/query/fo.cc.o.d"
  "/root/repo/src/fgq/query/parser.cc" "src/CMakeFiles/fgq.dir/fgq/query/parser.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/query/parser.cc.o.d"
  "/root/repo/src/fgq/so/enum_so.cc" "src/CMakeFiles/fgq.dir/fgq/so/enum_so.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/so/enum_so.cc.o.d"
  "/root/repo/src/fgq/so/sigma_count.cc" "src/CMakeFiles/fgq.dir/fgq/so/sigma_count.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/so/sigma_count.cc.o.d"
  "/root/repo/src/fgq/so/so_query.cc" "src/CMakeFiles/fgq.dir/fgq/so/so_query.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/so/so_query.cc.o.d"
  "/root/repo/src/fgq/util/bigint.cc" "src/CMakeFiles/fgq.dir/fgq/util/bigint.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/util/bigint.cc.o.d"
  "/root/repo/src/fgq/util/status.cc" "src/CMakeFiles/fgq.dir/fgq/util/status.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/util/status.cc.o.d"
  "/root/repo/src/fgq/workload/generators.cc" "src/CMakeFiles/fgq.dir/fgq/workload/generators.cc.o" "gcc" "src/CMakeFiles/fgq.dir/fgq/workload/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
