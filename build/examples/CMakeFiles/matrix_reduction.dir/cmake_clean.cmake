file(REMOVE_RECURSE
  "CMakeFiles/matrix_reduction.dir/matrix_reduction.cpp.o"
  "CMakeFiles/matrix_reduction.dir/matrix_reduction.cpp.o.d"
  "matrix_reduction"
  "matrix_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
