# Empty dependencies file for matrix_reduction.
# This may be replaced when dependencies are built.
