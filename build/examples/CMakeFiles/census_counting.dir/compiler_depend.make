# Empty compiler generated dependencies file for census_counting.
# This may be replaced when dependencies are built.
