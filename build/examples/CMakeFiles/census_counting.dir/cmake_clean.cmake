file(REMOVE_RECURSE
  "CMakeFiles/census_counting.dir/census_counting.cpp.o"
  "CMakeFiles/census_counting.dir/census_counting.cpp.o.d"
  "census_counting"
  "census_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
