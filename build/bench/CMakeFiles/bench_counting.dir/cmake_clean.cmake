file(REMOVE_RECURSE
  "CMakeFiles/bench_counting.dir/bench_counting.cc.o"
  "CMakeFiles/bench_counting.dir/bench_counting.cc.o.d"
  "bench_counting"
  "bench_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
