file(REMOVE_RECURSE
  "CMakeFiles/bench_ncq.dir/bench_ncq.cc.o"
  "CMakeFiles/bench_ncq.dir/bench_ncq.cc.o.d"
  "bench_ncq"
  "bench_ncq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ncq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
