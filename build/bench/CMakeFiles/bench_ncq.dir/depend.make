# Empty dependencies file for bench_ncq.
# This may be replaced when dependencies are built.
