file(REMOVE_RECURSE
  "CMakeFiles/bench_random_access.dir/bench_random_access.cc.o"
  "CMakeFiles/bench_random_access.dir/bench_random_access.cc.o.d"
  "bench_random_access"
  "bench_random_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_random_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
