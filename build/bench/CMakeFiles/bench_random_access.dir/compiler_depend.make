# Empty compiler generated dependencies file for bench_random_access.
# This may be replaced when dependencies are built.
