# Empty dependencies file for bench_ucq.
# This may be replaced when dependencies are built.
