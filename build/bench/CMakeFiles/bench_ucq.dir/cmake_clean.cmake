file(REMOVE_RECURSE
  "CMakeFiles/bench_ucq.dir/bench_ucq.cc.o"
  "CMakeFiles/bench_ucq.dir/bench_ucq.cc.o.d"
  "bench_ucq"
  "bench_ucq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ucq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
