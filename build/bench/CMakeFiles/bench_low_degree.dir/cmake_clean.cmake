file(REMOVE_RECURSE
  "CMakeFiles/bench_low_degree.dir/bench_low_degree.cc.o"
  "CMakeFiles/bench_low_degree.dir/bench_low_degree.cc.o.d"
  "bench_low_degree"
  "bench_low_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_low_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
