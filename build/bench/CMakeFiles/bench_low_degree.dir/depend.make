# Empty dependencies file for bench_low_degree.
# This may be replaced when dependencies are built.
