# Empty compiler generated dependencies file for bench_matmul_reduction.
# This may be replaced when dependencies are built.
