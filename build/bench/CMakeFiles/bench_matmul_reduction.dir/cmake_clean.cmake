file(REMOVE_RECURSE
  "CMakeFiles/bench_matmul_reduction.dir/bench_matmul_reduction.cc.o"
  "CMakeFiles/bench_matmul_reduction.dir/bench_matmul_reduction.cc.o.d"
  "bench_matmul_reduction"
  "bench_matmul_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matmul_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
