file(REMOVE_RECURSE
  "CMakeFiles/bench_fpras.dir/bench_fpras.cc.o"
  "CMakeFiles/bench_fpras.dir/bench_fpras.cc.o.d"
  "bench_fpras"
  "bench_fpras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
