# Empty compiler generated dependencies file for bench_fpras.
# This may be replaced when dependencies are built.
