# Empty dependencies file for bench_disequality.
# This may be replaced when dependencies are built.
