file(REMOVE_RECURSE
  "CMakeFiles/bench_disequality.dir/bench_disequality.cc.o"
  "CMakeFiles/bench_disequality.dir/bench_disequality.cc.o.d"
  "bench_disequality"
  "bench_disequality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disequality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
