file(REMOVE_RECURSE
  "CMakeFiles/bench_so_counting.dir/bench_so_counting.cc.o"
  "CMakeFiles/bench_so_counting.dir/bench_so_counting.cc.o.d"
  "bench_so_counting"
  "bench_so_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_so_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
