# Empty dependencies file for bench_so_counting.
# This may be replaced when dependencies are built.
