# Empty compiler generated dependencies file for bench_so_enum.
# This may be replaced when dependencies are built.
