file(REMOVE_RECURSE
  "CMakeFiles/bench_so_enum.dir/bench_so_enum.cc.o"
  "CMakeFiles/bench_so_enum.dir/bench_so_enum.cc.o.d"
  "bench_so_enum"
  "bench_so_enum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_so_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
