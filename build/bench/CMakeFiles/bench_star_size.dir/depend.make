# Empty dependencies file for bench_star_size.
# This may be replaced when dependencies are built.
