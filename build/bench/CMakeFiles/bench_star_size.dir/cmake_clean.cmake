file(REMOVE_RECURSE
  "CMakeFiles/bench_star_size.dir/bench_star_size.cc.o"
  "CMakeFiles/bench_star_size.dir/bench_star_size.cc.o.d"
  "bench_star_size"
  "bench_star_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_star_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
