file(REMOVE_RECURSE
  "CMakeFiles/bench_mso_enum.dir/bench_mso_enum.cc.o"
  "CMakeFiles/bench_mso_enum.dir/bench_mso_enum.cc.o.d"
  "bench_mso_enum"
  "bench_mso_enum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mso_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
