# Empty dependencies file for bench_mso_enum.
# This may be replaced when dependencies are built.
