file(REMOVE_RECURSE
  "CMakeFiles/bench_courcelle.dir/bench_courcelle.cc.o"
  "CMakeFiles/bench_courcelle.dir/bench_courcelle.cc.o.d"
  "bench_courcelle"
  "bench_courcelle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_courcelle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
