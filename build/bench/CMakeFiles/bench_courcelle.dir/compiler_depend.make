# Empty compiler generated dependencies file for bench_courcelle.
# This may be replaced when dependencies are built.
