file(REMOVE_RECURSE
  "CMakeFiles/diseq_test.dir/diseq_test.cc.o"
  "CMakeFiles/diseq_test.dir/diseq_test.cc.o.d"
  "diseq_test"
  "diseq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diseq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
