# Empty dependencies file for diseq_test.
# This may be replaced when dependencies are built.
