file(REMOVE_RECURSE
  "CMakeFiles/bmm_test.dir/bmm_test.cc.o"
  "CMakeFiles/bmm_test.dir/bmm_test.cc.o.d"
  "bmm_test"
  "bmm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
