# Empty dependencies file for bmm_test.
# This may be replaced when dependencies are built.
