file(REMOVE_RECURSE
  "CMakeFiles/ncq_test.dir/ncq_test.cc.o"
  "CMakeFiles/ncq_test.dir/ncq_test.cc.o.d"
  "ncq_test"
  "ncq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
