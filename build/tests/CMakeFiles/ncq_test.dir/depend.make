# Empty dependencies file for ncq_test.
# This may be replaced when dependencies are built.
