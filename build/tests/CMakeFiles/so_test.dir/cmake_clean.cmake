file(REMOVE_RECURSE
  "CMakeFiles/so_test.dir/so_test.cc.o"
  "CMakeFiles/so_test.dir/so_test.cc.o.d"
  "so_test"
  "so_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
