# Empty compiler generated dependencies file for so_test.
# This may be replaced when dependencies are built.
